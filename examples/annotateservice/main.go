// Command annotateservice demonstrates the HTTP annotation service end to
// end in one process: it builds a small knowledge base, starts the server
// on a loopback port, exercises every endpoint with a plain HTTP client,
// and shuts down gracefully. In production you would run cmd/aidaserver
// against a KB snapshot instead and talk to it with curl (see README.md).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"aida"
	"aida/internal/server"
)

func main() {
	b := aida.NewKBBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person")
	larry := b.AddEntity("Larry Page", "tech", "person")
	song := b.AddEntity("Kashmir (song)", "music", "work")
	region := b.AddEntity("Kashmir", "geography", "location")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person")

	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)

	music := []aida.EntityID{jimmy, song, zep, plant}
	for _, x := range music {
		for _, y := range music {
			if x != y {
				b.AddLink(x, y)
			}
		}
	}
	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(plant, "English rock singer")

	sys := aida.New(b.Build())
	srv := server.New(sys, server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)), // keep the demo output clean
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l, 5*time.Second) }()
	base := "http://" + l.Addr().String()

	show("GET /healthz", get(base+"/healthz"))
	show("POST /v1/annotate", post(base+"/v1/annotate", "",
		`{"text": "They performed Kashmir, written by Page and Plant."}`))
	show("POST /v1/annotate (per-request method)", post(base+"/v1/annotate", "",
		`{"text": "They performed Kashmir, written by Page and Plant.", "method": "prior"}`))
	show("POST /v1/annotate/batch (NDJSON)", post(base+"/v1/annotate/batch", "application/x-ndjson",
		`{"docs": ["Page played with Led Zeppelin.", "Kashmir is a disputed territory."], "parallelism": 2}`))
	show(fmt.Sprintf("GET /v1/relatedness?kind=KORE&a=%d&b=%d", jimmy, zep),
		get(fmt.Sprintf("%s/v1/relatedness?kind=KORE&a=%d&b=%d", base, jimmy, zep)))
	show("GET /v1/stats?format=prometheus (excerpt)",
		firstLines(get(base+"/v1/stats?format=prometheus"), 7))

	cancel() // graceful shutdown: drain in-flight requests, then exit
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return slurp(resp)
}

func post(url, accept, body string) string {
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	return slurp(resp)
}

func slurp(resp *http.Response) string {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimRight(string(data), "\n")
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func show(title, body string) {
	fmt.Printf("== %s ==\n%s\n\n", title, body)
}
