package aida

import (
	"reflect"
	"runtime"
	"slices"
	"testing"

	"aida/internal/wiki"
)

// batchWorld generates a small synthetic world plus a corpus of documents
// for batch-annotation tests.
func batchWorld(t testing.TB, docs int) (*KB, []string) {
	t.Helper()
	w := wiki.Generate(wiki.Config{Seed: 17, Entities: 300})
	corpus := w.GenerateCorpus(wiki.CoNLLSpec(docs, 23))
	texts := make([]string, len(corpus))
	for i, d := range corpus {
		texts[i] = d.Text
	}
	return w.KB, texts
}

// TestAnnotateBatchMatchesSequential is the headline determinism check:
// AnnotateBatch at full parallelism must produce byte-identical annotations
// to the one-document-at-a-time loop, on both a cold and a warm engine.
func TestAnnotateBatchMatchesSequential(t *testing.T) {
	k, docs := batchWorld(t, 12)

	seq := New(k, WithMaxCandidates(10))
	want := make([][]Annotation, len(docs))
	for i, d := range docs {
		want[i] = seq.Annotate(d)
	}

	for _, parallelism := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		sys := New(k, WithMaxCandidates(10))
		cold := sys.AnnotateBatch(docs, parallelism)
		if !reflect.DeepEqual(want, cold) {
			t.Fatalf("parallelism=%d: cold batch diverges from sequential", parallelism)
		}
		warm := sys.AnnotateBatch(docs, parallelism)
		if !reflect.DeepEqual(want, warm) {
			t.Fatalf("parallelism=%d: warm batch diverges from sequential", parallelism)
		}
	}
}

// TestAnnotateBatchWarmsEngine checks that batch annotation actually fills
// the shared engine (the cross-document reuse the engine exists for).
func TestAnnotateBatchWarmsEngine(t *testing.T) {
	k, docs := batchWorld(t, 8)
	sys := New(k, WithMaxCandidates(10))
	sys.AnnotateBatch(docs, 4)
	_, misses1 := sys.Scorer().CacheStats()
	if misses1 == 0 {
		t.Fatal("expected the engine to compute pair values during batch annotation")
	}
	sys.AnnotateBatch(docs, 4)
	hits2, misses2 := sys.Scorer().CacheStats()
	if misses2 != misses1 {
		t.Errorf("second pass over the same docs recomputed %d pairs", misses2-misses1)
	}
	if hits2 == 0 {
		t.Error("second pass should hit the warm cache")
	}
}

// TestAnnotateBoundedMatchesAnnotate pins the concurrency-budgeted
// variant to the default pipeline: the bound changes scheduling only.
func TestAnnotateBoundedMatchesAnnotate(t *testing.T) {
	k, docs := batchWorld(t, 4)
	sys := New(k, WithMaxCandidates(10))
	for _, d := range docs {
		want := sys.Annotate(d)
		for _, bound := range []int{-1, 0, 1, 2, runtime.GOMAXPROCS(0)} {
			if got := sys.AnnotateBounded(d, bound); !reflect.DeepEqual(want, got) {
				t.Fatalf("bound=%d: AnnotateBounded diverges from Annotate", bound)
			}
		}
	}
}

// TestAnnotateAllMatchesBatch checks the streaming iterator yields the
// same annotations in order, and honors early termination.
func TestAnnotateAllMatchesBatch(t *testing.T) {
	k, docs := batchWorld(t, 10)
	sys := New(k, WithMaxCandidates(10))
	want := sys.AnnotateBatch(docs, 0)

	for _, parallelism := range []int{1, 4} {
		var got [][]Annotation
		var order []int
		for i, anns := range sys.AnnotateAll(slices.Values(docs), parallelism) {
			order = append(order, i)
			got = append(got, anns)
		}
		for i := range order {
			if order[i] != i {
				t.Fatalf("parallelism=%d: out-of-order yield %v", parallelism, order)
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism=%d: streaming output diverges from batch", parallelism)
		}
	}

	// Early break must not deadlock or leak; we only check it stops.
	n := 0
	for range sys.AnnotateAll(slices.Values(docs), 4) {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early break consumed %d docs", n)
	}
}

// TestSystemRelatednessReusesEngine pins the facade Relatedness to the
// engine (identical values across calls and to a fresh system).
func TestSystemRelatednessReusesEngine(t *testing.T) {
	k := demoKB()
	sys := New(k)
	jimmy, _ := k.EntityByName("Jimmy Page")
	zep, _ := k.EntityByName("Led Zeppelin")
	for _, kind := range []RelatednessKind{MW, KWCS, KPCS, KORE, KORELSHG, KORELSHF} {
		first := sys.Relatedness(kind, jimmy, zep)
		if again := sys.Relatedness(kind, jimmy, zep); again != first {
			t.Fatalf("%v: memoized value drifted: %v vs %v", kind, first, again)
		}
		if fresh := New(k).Relatedness(kind, jimmy, zep); fresh != first {
			t.Fatalf("%v: fresh system disagrees: %v vs %v", kind, first, fresh)
		}
	}
	if hits, _ := sys.Scorer().CacheStats(); hits == 0 {
		t.Error("repeated Relatedness calls should hit the engine cache")
	}
}
