package aida

// End-to-end integration tests over the synthetic world: the full pipeline
// from corpus generation through recognition, disambiguation, emerging-
// entity discovery, and the two Chapter 6 applications.

import (
	"testing"

	"aida/internal/analytics"
	"aida/internal/eval"
	"aida/internal/search"
	"aida/internal/wiki"
)

func integrationWorld(t *testing.T) *wiki.World {
	t.Helper()
	return wiki.Generate(wiki.Config{Seed: 77, Entities: 500})
}

func TestIntegrationAIDABeatsPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	world := integrationWorld(t)
	docs := world.GenerateCorpus(wiki.CoNLLSpec(12, 5))
	run := func(m Method) float64 {
		sys := New(world.KB, WithMethod(m), WithMaxCandidates(10))
		var labels [][]eval.Label
		for i := range docs {
			out := sys.Disambiguate(docs[i].Text, docs[i].Surfaces())
			row := make([]eval.Label, len(docs[i].Mentions))
			for j, gm := range docs[i].Mentions {
				row[j] = eval.Label{Gold: gm.Entity, Pred: out.Results[j].Entity}
			}
			labels = append(labels, row)
		}
		return eval.MicroAccuracy(labels, eval.InKBOnly)
	}
	aidaAcc := run(NewAIDAMethod())
	priorAcc := run(Baselines()[5]) // prior-only
	if aidaAcc <= priorAcc {
		t.Fatalf("AIDA (%.3f) should beat the prior baseline (%.3f)", aidaAcc, priorAcc)
	}
	if aidaAcc < 0.6 {
		t.Fatalf("AIDA accuracy implausibly low: %.3f", aidaAcc)
	}
}

func TestIntegrationRecognitionFindsGoldSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	world := integrationWorld(t)
	docs := world.GenerateCorpus(wiki.CoNLLSpec(5, 9))
	sys := New(world.KB)
	found, total := 0, 0
	for i := range docs {
		spans := sys.Recognize(docs[i].Text)
		surfaces := map[string]bool{}
		for _, sp := range spans {
			surfaces[sp.Text] = true
		}
		for _, gm := range docs[i].Mentions {
			total++
			if surfaces[gm.Surface] {
				found++
			}
		}
	}
	if recall := float64(found) / float64(total); recall < 0.7 {
		t.Fatalf("NER surface recall too low: %.3f", recall)
	}
}

func TestIntegrationEEPipelineOverStream(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	world := integrationWorld(t)
	stream := world.NewsStream(wiki.DefaultNewsSpec(4, 8, 3))
	pl := &EEPipeline{
		KB:            world.KB,
		MaxCandidates: 10,
		HarvestWindow: -1,
		Model:         EEModelConfig{MaxKeyphrases: 25, MinCount: 2},
	}
	var chunk []ChunkDoc
	var today []wiki.Document
	for _, d := range stream {
		if d.Day < 4 {
			var surfaces []string
			for _, gm := range d.Mentions {
				if len(world.KB.Candidates(gm.Surface)) > 0 {
					surfaces = append(surfaces, gm.Surface)
				}
			}
			chunk = append(chunk, ChunkDoc{Text: d.Text, Surfaces: surfaces})
		} else {
			today = append(today, d)
		}
	}
	enricher := pl.BuildEnricher(chunk)
	var labels [][]eval.Label
	for i := range today {
		d := &today[i]
		var surfaces []string
		var gold []wiki.GoldMention
		for _, gm := range d.Mentions {
			if len(world.KB.Candidates(gm.Surface)) > 0 {
				surfaces = append(surfaces, gm.Surface)
				gold = append(gold, gm)
			}
		}
		if len(surfaces) == 0 {
			continue
		}
		disc := pl.Run(d.Text, surfaces, chunk, enricher)
		row := make([]eval.Label, len(gold))
		for j, gm := range gold {
			row[j] = eval.Label{Gold: gm.Entity, Pred: disc.Output.Results[j].Entity}
		}
		labels = append(labels, row)
	}
	q := eval.EEQuality(labels)
	acc := eval.MicroAccuracy(labels, eval.WithEE)
	if acc < 0.4 {
		t.Fatalf("stream accuracy implausibly low: %.3f", acc)
	}
	if q.Precision == 0 && q.Recall == 0 {
		t.Fatal("EE pipeline discovered nothing at all")
	}
}

func TestIntegrationSearchAndAnalytics(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	world := integrationWorld(t)
	stream := world.NewsStream(wiki.DefaultNewsSpec(3, 6, 11))
	sys := New(world.KB, WithMaxCandidates(8))
	ix := search.NewIndex(world.KB)
	stats := analytics.New()
	for _, d := range stream {
		out := sys.Disambiguate(d.Text, d.Surfaces())
		var anns []search.Annotation
		var ents []EntityID
		for _, r := range out.Results {
			if r.Entity == NoEntity {
				continue
			}
			anns = append(anns, search.Annotation{Entity: r.Entity, Surface: r.Surface})
			ents = append(ents, r.Entity)
		}
		ix.AddDocument(d.ID, d.Text, anns)
		stats.AddDoc(d.Day, ents)
	}
	if ix.NumDocs() != len(stream) {
		t.Fatalf("indexed %d of %d docs", ix.NumDocs(), len(stream))
	}
	top := stats.TopEntities(1, 3, 1)
	if len(top) == 0 {
		t.Fatal("no entities tracked")
	}
	hits := ix.Search(search.Query{Entities: []EntityID{top[0].Entity}}, 5)
	if len(hits) == 0 {
		t.Fatal("entity query found nothing for the most frequent entity")
	}
	if trend := stats.Trending(3, 2, 5); len(trend) == 0 {
		t.Fatal("no trending entities on a day with documents")
	}
}
