package aida

// Ablation benchmarks for the design choices called out in DESIGN.md: the
// robustness tests (Sec. 3.5), the graph pre-pruning factor (Sec. 3.4.2),
// the candidate cap, and the LSH band geometry (Sec. 4.4.2). Each bench
// reports the quality impact of removing/varying one choice while holding
// everything else fixed.

import (
	"fmt"
	"testing"

	"aida/internal/disambig"
	"aida/internal/eval"
	"aida/internal/graph"
	"aida/internal/kb"
	"aida/internal/relatedness"
	"aida/internal/wiki"
)

// ablationRun scores one AIDA configuration on the shared CoNLL-like corpus.
func ablationRun(b *testing.B, cfg disambig.Config, maxCands int) float64 {
	b.Helper()
	s := benchSuite()
	docs := s.World.GenerateCorpus(wiki.CoNLLSpec(15, 99))
	m := disambig.NewAIDAVariant("ablation", cfg)
	var labels [][]eval.Label
	for i := range docs {
		doc := &docs[i]
		p := disambig.NewProblem(s.World.KB, doc.Text, doc.Surfaces(), maxCands)
		out := m.Disambiguate(p)
		row := make([]eval.Label, len(doc.Mentions))
		for j, gm := range doc.Mentions {
			row[j] = eval.Label{Gold: gm.Entity, Pred: out.Results[j].Entity}
		}
		labels = append(labels, row)
	}
	return eval.MicroAccuracy(labels, eval.InKBOnly)
}

// BenchmarkAblationRobustnessTests compares the full AIDA against variants
// with the prior test and the coherence test disabled.
func BenchmarkAblationRobustnessTests(b *testing.B) {
	full := disambig.Config{UsePrior: true, PriorTest: true, UseCoherence: true,
		CoherenceTest: true, Measure: relatedness.KindMW}
	noPriorTest := full
	noPriorTest.PriorTest = false
	noCohTest := full
	noCohTest.CoherenceTest = false
	for i := 0; i < b.N; i++ {
		b.ReportMetric(100*ablationRun(b, full, 10), "full-%")
		b.ReportMetric(100*ablationRun(b, noPriorTest, 10), "no-rprior-%")
		b.ReportMetric(100*ablationRun(b, noCohTest, 10), "no-rcoh-%")
	}
}

// BenchmarkAblationPruneFactor varies the graph pre-pruning factor
// (entities kept per mention before peeling; the paper settles on 5).
func BenchmarkAblationPruneFactor(b *testing.B) {
	for _, factor := range []int{1, 5, 20} {
		factor := factor
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			cfg := disambig.Config{UsePrior: true, PriorTest: true, UseCoherence: true,
				CoherenceTest: true, Measure: relatedness.KindMW,
				Graph: graph.Options{PruneFactor: factor}}
			for i := 0; i < b.N; i++ {
				b.ReportMetric(100*ablationRun(b, cfg, 10), "micro-%")
			}
		})
	}
}

// BenchmarkAblationCandidateCap varies the per-mention candidate cap.
func BenchmarkAblationCandidateCap(b *testing.B) {
	cfg := disambig.Config{UsePrior: true, PriorTest: true, UseCoherence: true,
		CoherenceTest: true, Measure: relatedness.KindMW}
	for _, cap := range []int{3, 10, 0} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(100*ablationRun(b, cfg, cap), "micro-%")
			}
		})
	}
}

// BenchmarkAblationLSHGeometry compares the pair-pruning power of the two
// published LSH geometries (200×1 recall-oriented vs 1000×2 precision-
// oriented) on the same candidate sets.
func BenchmarkAblationLSHGeometry(b *testing.B) {
	s := benchSuite()
	ents := make([]kb.EntityID, 0, 120)
	for _, domain := range wiki.Domains() {
		ents = append(ents, s.World.PopularEntities(domain, 15)...)
	}
	exact := len(ents) * (len(ents) - 1) / 2
	g := relatedness.NewMeasure(relatedness.KindKORELSHG, s.World.KB)
	f := relatedness.NewMeasure(relatedness.KindKORELSHF, s.World.KB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := len(g.Pairs(ents))
		pf := len(f.Pairs(ents))
		b.ReportMetric(float64(exact), "pairs-exact")
		b.ReportMetric(float64(pg), "pairs-lshg")
		b.ReportMetric(float64(pf), "pairs-lshf")
	}
}
