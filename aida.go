package aida

import (
	"context"
	"fmt"
	"io"
	"maps"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
	"aida/internal/nec"
	"aida/internal/ner"
	"aida/internal/relatedness"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the supported public surface.
type (
	// KB is the knowledge base: entity repository, name dictionary, link
	// graph and keyphrase features.
	KB = kb.KB
	// Store is the read interface every knowledge-base implementation
	// satisfies: the single-process *KB and the sharded router. Systems
	// are built over a Store, so the whole pipeline runs unchanged — and
	// byte-identically — against either.
	Store = kb.Store
	// ShardedKB is a knowledge base split into N shards behind a
	// deterministic routing layer; build one with ShardKB.
	ShardedKB = kb.ShardedKB
	// RemoteStore is a Store served by a fleet of remote shard hosts,
	// dialed with DialFleet. Annotation over it is byte-identical to a
	// local KB; fetches are batched per shard, hedged past a latency
	// threshold, and failed over across replicas.
	RemoteStore = kb.RemoteStore
	// RemoteOptions tune a DialFleet connection (HTTP client, hedge
	// threshold, retry backoff, expected KB fingerprint).
	RemoteOptions = kb.RemoteOptions
	// RemoteStats is a snapshot of a RemoteStore's fetch counters.
	RemoteStats = kb.RemoteStats
	// RemoteError is the terminal failure of one remote store operation:
	// every replica of a shard failed. AnnotateDoc and friends return it
	// as the request error.
	RemoteError = kb.RemoteError
	// ShardMap is the fleet topology a remote router dials: one entry per
	// shard naming a primary endpoint and optional replicas.
	ShardMap = kb.ShardMap
	// ShardEndpoints lists one shard's hosts, primary first.
	ShardEndpoints = kb.ShardEndpoints
	// StoreHost serves one shard of a Store's read surface over HTTP so
	// remote routers can dial it; build one with NewStoreHost.
	StoreHost = kb.StoreHost
	// Delta is one batch of live knowledge-base additions (new entities,
	// dictionary rows, link edges, IDF extensions) a serving System
	// installs without restart via ApplyDelta. See kb.Delta for the wire
	// form and validation rules.
	Delta = kb.Delta
	// DeltaEntity is one entity added by a Delta, with precomputed
	// feature weights.
	DeltaEntity = kb.NewEntity
	// DeltaRow is one dictionary-row count addition of a Delta.
	DeltaRow = kb.RowAddition
	// DeltaLink is one directed link edge of a Delta.
	DeltaLink = kb.LinkAddition
	// Overlay is a copy-on-write Store: a base Store plus one applied
	// Delta; build one with NewOverlay, or let ApplyDelta do it.
	Overlay = kb.Overlay
	// DomainDictionary is a named per-domain surface→entity dictionary;
	// register one with (*System).RegisterDomain and select it per
	// request with WithDomain.
	DomainDictionary = kb.DomainDictionary
	// DomainRow is one surface→entity count assertion of a
	// DomainDictionary.
	DomainRow = kb.DomainRow
	// DomainLayer is a Store with one domain dictionary composed over it
	// copy-on-write; build one with NewDomainLayer, or let RegisterDomain
	// do it.
	DomainLayer = kb.DomainLayer
	// KBBuilder assembles a KB.
	KBBuilder = kb.Builder
	// EntityID identifies a KB entity; NoEntity marks out-of-KB.
	EntityID = kb.EntityID
	// Entity is one canonical entity.
	Entity = kb.Entity
	// Keyphrase is a weighted salient phrase describing an entity.
	Keyphrase = kb.Keyphrase
	// Candidate is a disambiguation target with its features.
	Candidate = disambig.Candidate
	// Problem is a self-contained disambiguation instance.
	Problem = disambig.Problem
	// Result is the per-mention disambiguation outcome.
	Result = disambig.Result
	// Output is a full disambiguation result with work statistics.
	Output = disambig.Output
	// Stats are the work counters of one disambiguation run (also
	// returned in Document.Stats when IncludeStats is requested).
	Stats = disambig.Stats
	// Method is a disambiguation algorithm.
	Method = disambig.Method
	// Config parameterizes the AIDA method.
	Config = disambig.Config
	// MentionSpan is a recognized mention with offsets.
	MentionSpan = ner.Mention
	// RelatednessKind selects an entity-relatedness measure.
	RelatednessKind = relatedness.Kind
	// Scorer is the long-lived, concurrency-safe scoring engine bound to a
	// KB: it interns entity profiles, memoizes pairwise relatedness across
	// documents for all measure kinds, and builds each LSH filter once.
	// Every System holds one; see (*System).Scorer.
	Scorer = relatedness.Scorer
	// ScorerStats is a snapshot of the engine's caches: interned-profile
	// count and approximate memory, memoized pair count, and per-kind
	// hit/miss counters. See (*Scorer).Stats.
	ScorerStats = relatedness.Stats
	// KindStats are one measure kind's pair-cache counters within a
	// ScorerStats snapshot.
	KindStats = relatedness.KindStats
	// Discoverer performs emerging-entity discovery (Algorithm 3).
	Discoverer = emerge.Discoverer
	// Harvester mines keyphrases around name occurrences.
	Harvester = emerge.Harvester
	// EEModelConfig tunes placeholder-model construction.
	EEModelConfig = emerge.ModelConfig
	// EEPipeline wires harvesting, enrichment, placeholder models and
	// discovery into the end-to-end news workflow of Chapter 5.
	EEPipeline = emerge.Pipeline
	// ChunkDoc is one document of an EEPipeline harvesting chunk.
	ChunkDoc = emerge.ChunkDoc
	// Enricher accumulates harvested keyphrases for existing entities.
	Enricher = emerge.Enricher
	// TypeClassifier predicts a mention context's coarse semantic type and
	// can pre-filter candidates (named entity classification, Sec. 2.4.4).
	TypeClassifier = nec.Classifier
)

// TrainTypeClassifier builds a TypeClassifier from the KB's type-keyword
// statistics.
func TrainTypeClassifier(k Store) *TypeClassifier { return nec.Train(k) }

// NoEntity marks a mention whose entity is not in the knowledge base.
const NoEntity = kb.NoEntity

// Relatedness measure kinds (Chapter 4).
const (
	MW       = relatedness.KindMW
	KWCS     = relatedness.KindKWCS
	KPCS     = relatedness.KindKPCS
	KORE     = relatedness.KindKORE
	KORELSHG = relatedness.KindKORELSHG
	KORELSHF = relatedness.KindKORELSHF
)

// ParseRelatednessKind resolves a measure name as printed by
// RelatednessKind.String ("MW", "KWCS", "KPCS", "KORE", "KORE-LSH-G",
// "KORE-LSH-F"), case-insensitively.
func ParseRelatednessKind(name string) (RelatednessKind, error) {
	return relatedness.ParseKind(name)
}

// NewKBBuilder returns an empty knowledge-base builder.
func NewKBBuilder() *KBBuilder { return kb.NewBuilder() }

// NewOverlay validates a delta against a base store and returns the
// copy-on-write merged view (see kb.NewOverlay). Most callers want
// (*System).ApplyDelta, which also swaps the serving generation and
// invalidates the scoring engine.
func NewOverlay(base Store, d *Delta) (*Overlay, error) { return kb.NewOverlay(base, d) }

// RebuildKB returns a fresh KB with a delta's facts baked in, as if built
// that way from the start — the conformance baseline an Overlay is
// byte-identical to, and the compaction path for long overlay chains.
func RebuildKB(k *KB, d *Delta) (*KB, error) { return kb.Rebuild(k, d) }

// LoadKB reads a KB snapshot written with (*KB).Save.
func LoadKB(r io.Reader) (*KB, error) { return kb.Load(r) }

// ShardKB splits a built KB into n shards behind a routing layer
// (entities by id mod n, dictionary rows by normalized-surface hash).
// Annotation over the returned store is byte-identical to annotation over
// k at any shard count; n must be ≥ 1.
func ShardKB(k *KB, n int) *ShardedKB { return kb.Shard(k, n) }

// LoadShardMap reads and validates a shard-fleet topology file (the
// -shard-map flag of cmd/aidaserver and cmd/aida; see kb.ShardMap for the
// JSON shape).
func LoadShardMap(path string) (ShardMap, error) { return kb.LoadShardMap(path) }

// NewDomainLayer composes a domain dictionary over a base store as a
// copy-on-write layer (see kb.NewDomainLayer). Most callers want
// (*System).RegisterDomain, which also clones the scoring engine and
// makes the layer selectable with WithDomain.
func NewDomainLayer(base Store, dict DomainDictionary) (*DomainLayer, error) {
	return kb.NewDomainLayer(base, dict)
}

// LoadDomainDictionaries reads and validates a domain-dictionary file
// (the -domains flag of cmd/aidaserver and cmd/aida; see
// kb.ParseDomainDictionaries for the JSON shape).
func LoadDomainDictionaries(path string) ([]DomainDictionary, error) {
	return kb.LoadDomainDictionaries(path)
}

// DialFleet connects to a remote shard fleet and returns a Store the
// pipeline runs over unchanged: it validates the topology and the fleet's
// agreed-on KB fingerprint, mirrors the dictionary key set and IDF tables
// locally, and fetches entities and candidate rows on demand with
// per-shard batching, hedging and replica failover.
func DialFleet(ctx context.Context, m ShardMap, opts RemoteOptions) (*RemoteStore, error) {
	return kb.DialFleet(ctx, m, opts)
}

// NewStoreHost wraps a store as shard `shard` of a `shards`-wide fleet,
// ready to serve the remote KB read surface (the -shard-host flag of
// cmd/aidaserver mounts it under /v1/store/).
func NewStoreHost(s Store, shard, shards int) (*StoreHost, error) {
	return kb.NewStoreHost(s, shard, shards)
}

// NewAIDAMethod returns the full AIDA method (robustness tests + MW
// coherence), the dissertation's best configuration.
func NewAIDAMethod() Method { return disambig.NewAIDA() }

// NewMethod builds an AIDA variant from an explicit configuration.
func NewMethod(name string, cfg Config) Method { return disambig.NewAIDAVariant(name, cfg) }

// Baselines returns the dissertation's full method suite (Table 3.2).
func Baselines() []Method { return disambig.Methods() }

// methodTable maps every selector MethodByName accepts (lower-case) to
// the constructor of the method it names. It is the single enumerable
// source of truth for the selector set shared by the command-line tools,
// the server's per-request method field, and UseMethodNamed; MethodNames
// lists it.
var methodTable = map[string]func() Method{
	"aida":   NewAIDAMethod,
	"prior":  func() Method { return baselineNamed("prior") },
	"sim":    func() Method { return baselineNamed("sim-k") },
	"cuc":    func() Method { return baselineNamed("Cuc") },
	"kul-ci": func() Method { return baselineNamed("Kul CI") },
	"tagme":  NewTagMe,
	"iw":     NewWikifier,
}

// baselineNamed picks a method out of the dissertation's baseline suite by
// its printed name (nil when absent).
func baselineNamed(name string) Method {
	for _, m := range Baselines() {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// MethodNames returns every selector MethodByName accepts, sorted. The
// empty string (an alias for "aida") is not listed.
func MethodNames() []string {
	return slices.Sorted(maps.Keys(methodTable))
}

// MethodByName resolves the method selectors shared by the command-line
// tools and the server, case-insensitively: "aida" (or empty, the
// default), "prior", "sim", "cuc", "kul-ci", "tagme", "iw". Unknown names
// are an error, never a silent fallback.
func MethodByName(name string) (Method, error) {
	sel := strings.ToLower(name)
	if sel == "" {
		sel = "aida"
	}
	if ctor, ok := methodTable[sel]; ok {
		if m := ctor(); m != nil {
			return m, nil
		}
	}
	return nil, fmt.Errorf("unknown method %q (want %s)", name, strings.Join(MethodNames(), ", "))
}

// NewTagMe returns the TagMe-style light-weight linker baseline.
func NewTagMe() Method { return disambig.TagMe{} }

// NewWikifier returns the Illinois-Wikifier-style linker baseline.
func NewWikifier() Method { return disambig.Wikifier{} }

// Annotation is one end-to-end annotation: a recognized mention linked to
// an entity (or NoEntity).
type Annotation struct {
	Mention MentionSpan
	Entity  EntityID
	Label   string
	Score   float64
}

// System bundles the full pipeline: recognition, candidate generation and
// disambiguation against one knowledge base store (a single KB, a sharded
// router or a remote fleet — the annotations are byte-identical either
// way).
//
// A System serves one KB *generation* at a time. ApplyDelta installs a new
// generation (a copy-on-write overlay plus a warm-cloned scoring engine)
// with one atomic swap; every annotation request reads the generation
// pointer exactly once, so a document is always scored against one
// consistent (store, engine) pair even while an apply races it.
type System struct {
	// KB is the store the System was constructed over — generation 0.
	// After ApplyDelta it is NOT the serving store; use Store() for the
	// live generation. The field stays for construction-time identity
	// (e.g. recognizing a remote fleet client) and compatibility.
	KB     Store
	Method Method
	// MaxCandidates caps candidates per mention (0 = no cap).
	MaxCandidates int
	// ExpandSurfaces enables within-document surface expansion.
	ExpandSurfaces bool

	recognizer ner.Recognizer

	// live is the serving generation; swapped atomically by ApplyDelta,
	// loaded once per request. applyMu serializes appliers.
	live    atomic.Pointer[liveKB]
	applyMu sync.Mutex

	// domains holds the registered per-domain dictionary layers, each a
	// full (store, engine) pair selectable with WithDomain. Registration
	// is rare; requests take the read lock once during option resolution.
	domainsMu sync.RWMutex
	domains   map[string]*liveKB
}

// liveKB is one immutable serving generation: the store, the engine bound
// to it, and the update counters as of its installation.
type liveKB struct {
	store  kb.Store
	engine *relatedness.Scorer
	stats  KBLiveStats
}

// KBLiveStats are a System's live-update counters: the current KB
// generation (0 = as constructed, +1 per applied delta) and what the
// applied deltas added in total.
type KBLiveStats struct {
	Generation    uint64 `json:"generation"`
	DeltaApplies  uint64 `json:"delta_applies"`
	DeltaEntities uint64 `json:"delta_entities"`
	DeltaRows     uint64 `json:"delta_rows"`
}

// LiveKB is a consistent snapshot of a System's serving generation: the
// store and the scoring engine belong together (the engine is bound to
// exactly that store). Callers that need both — e.g. to run an emerge
// pipeline against the serving KB — must take one snapshot rather than
// calling Store() and Scorer() separately, which could straddle an apply.
type LiveKB struct {
	Store  Store
	Engine *Scorer
	Stats  KBLiveStats
}

// Live returns the serving generation snapshot. The returned pair stays
// valid (and internally consistent) even after later ApplyDelta calls;
// it just describes an older generation then.
func (s *System) Live() LiveKB {
	lv := s.live.Load()
	return LiveKB{Store: lv.store, Engine: lv.engine, Stats: lv.stats}
}

// Store returns the serving knowledge-base store: the construction store
// at generation 0, the newest overlay after ApplyDelta calls.
func (s *System) Store() Store { return s.live.Load().store }

// Generation returns the serving KB generation (0 = as constructed,
// incremented by every ApplyDelta).
func (s *System) Generation() uint64 { return s.live.Load().stats.Generation }

// LiveStats returns the live-update counters of the serving generation.
func (s *System) LiveStats() KBLiveStats { return s.live.Load().stats }

// DeltaReceipt reports what one ApplyDelta installed.
type DeltaReceipt struct {
	// Generation is the serving generation after the apply.
	Generation uint64
	// Entities, Rows and Links count the delta's additions; Touched is
	// how many pre-existing entities had their link sets changed (the
	// engine-invalidation set).
	Entities int
	Rows     int
	Links    int
	Touched  int
	// KBEntities is the repository size after the apply.
	KBEntities int
}

// ApplyDelta installs a batch of KB additions into the serving System
// without restart: the delta is validated against the live store, merged
// into a copy-on-write Overlay, the scoring engine is warm-cloned with
// every value the update invalidates dropped (profiles and memoized pairs
// of link-touched entities; all MW values when the entity count changed —
// see relatedness.CloneFor), and the new (store, engine) generation is
// swapped in atomically. In-flight documents finish on the generation they
// started with; the next request sees the new one — a graduated entity is
// linkable by name immediately.
//
// The overlay's fingerprint differs from the old generation's whenever the
// delta changes logical content, so derived state bound to the old
// generation (engine snapshots, fleet fingerprint checks) fails safely
// rather than mixing generations.
//
// Appliers are serialized; a delta validated against a generation that is
// no longer serving (its BaseEntities mismatches) is rejected with an
// error and changes nothing.
func (s *System) ApplyDelta(d *kb.Delta) (DeltaReceipt, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	cur := s.live.Load()
	ov, err := kb.NewOverlay(cur.store, d)
	if err != nil {
		return DeltaReceipt{}, err
	}
	engine := cur.engine.CloneFor(ov, ov.Touched(), ov.Added() > 0)
	st := cur.stats
	st.Generation++
	st.DeltaApplies++
	st.DeltaEntities += uint64(ov.Added())
	st.DeltaRows += uint64(len(d.Rows))
	s.live.Store(&liveKB{store: ov, engine: engine, stats: st})
	return DeltaReceipt{
		Generation: st.Generation,
		Entities:   ov.Added(),
		Rows:       len(d.Rows),
		Links:      len(d.Links),
		Touched:    len(ov.Touched()),
		KBEntities: ov.NumEntities(),
	}, nil
}

// RegisterDomain composes a per-domain dictionary layer over the serving
// KB generation and makes it selectable by name with WithDomain (and the
// HTTP "domain" field). The layer is a copy-on-write view: dictionary rows
// re-weight the domain's senses of their surfaces while every other read
// passes through to the base, and the scoring engine is shared with the
// base generation (a rows-only layer invalidates nothing). Registering a
// name again replaces the layer; requests already routed keep the layer
// they resolved.
//
// Layers bind to the serving generation at registration time: a later
// ApplyDelta does not rebase them. Servers that apply deltas should
// re-register their domains afterwards.
func (s *System) RegisterDomain(dict DomainDictionary) error {
	lv := s.live.Load()
	layer, err := kb.NewDomainLayer(lv.store, dict)
	if err != nil {
		return err
	}
	engine := lv.engine.CloneFor(layer, layer.Touched(), layer.Added() > 0)
	s.domainsMu.Lock()
	defer s.domainsMu.Unlock()
	if s.domains == nil {
		s.domains = make(map[string]*liveKB)
	}
	s.domains[dict.Name] = &liveKB{store: layer, engine: engine, stats: lv.stats}
	return nil
}

// DomainNames lists the registered domain names, sorted.
func (s *System) DomainNames() []string {
	s.domainsMu.RLock()
	defer s.domainsMu.RUnlock()
	return slices.Sorted(maps.Keys(s.domains))
}

// domainLive resolves a WithDomain selector to its registered layer.
func (s *System) domainLive(name string) (*liveKB, error) {
	s.domainsMu.RLock()
	lv := s.domains[name]
	s.domainsMu.RUnlock()
	if lv != nil {
		return lv, nil
	}
	names := s.DomainNames()
	if len(names) == 0 {
		return nil, invalidRequestf("unknown domain %q (no domains registered)", name)
	}
	return nil, invalidRequestf("unknown domain %q (available: %s)", name, strings.Join(names, ", "))
}

// Option configures a System.
type Option func(*System)

// WithMethod selects the disambiguation method (default: full AIDA).
func WithMethod(m Method) Option { return func(s *System) { s.Method = m } }

// WithMaxCandidates caps the candidates materialized per mention.
func WithMaxCandidates(n int) Option { return func(s *System) { s.MaxCandidates = n } }

// WithSurfaceExpansion enables the within-document coreference heuristic:
// single-word mentions are expanded to a longer mention of the same
// document containing them ("Carter" → "Rubin Carter").
func WithSurfaceExpansion() Option { return func(s *System) { s.ExpandSurfaces = true } }

// WithMaxProfileBytes bounds the approximate heap footprint of the scoring
// engine's interned entity profiles (0, the default, is unbounded). Over
// budget, cold profiles are evicted CLOCK-wise together with their
// dependent memoized pair values; annotation output never changes — evicted
// state is recomputed on demand — only the engine's work counters do. See
// ScorerStats.Evictions.
func WithMaxProfileBytes(n int64) Option {
	return func(s *System) { s.Scorer().SetMaxProfileBytes(n) }
}

// New creates a System over the knowledge base store.
func New(k Store, opts ...Option) *System {
	s := &System{KB: k, Method: disambig.NewAIDA()}
	s.recognizer.Lexicon = k
	s.live.Store(&liveKB{store: k, engine: relatedness.NewScorer(k)})
	for _, o := range opts {
		o(s)
	}
	return s
}

// Scorer returns the serving generation's scoring engine. It accumulates
// interned profiles and memoized pair scores across every document the
// system annotates; all its methods are safe for concurrent use. After
// ApplyDelta this returns the new generation's engine — callers that need
// the engine together with its store should take one Live() snapshot.
func (s *System) Scorer() *Scorer { return s.live.Load().engine }

// SaveEngine writes the scoring engine's accumulated state — interned
// profiles and memoized pair values — as a versioned snapshot bound to the
// KB's content fingerprint. A fresh process over the same KB can LoadEngine
// it and serve its first request with a warm engine. Safe to call
// concurrently with annotation traffic.
func (s *System) SaveEngine(w io.Writer) error { return s.Scorer().Save(w) }

// SaveEngineFile writes the engine snapshot to path atomically: a temp
// file in the target's directory is written first and renamed over it, so
// a crash mid-write can never leave a truncated snapshot where the next
// boot would read it. It returns the snapshot size in bytes. Both binaries
// and the server's admin endpoint persist through this one function.
func (s *System) SaveEngineFile(path string) (int64, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "." // keep temp and target on one filesystem (rename must not cross devices)
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.SaveEngine(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	n, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return n, nil
}

// LoadEngine warm-starts the scoring engine from a snapshot written by
// SaveEngine. The snapshot must come from the same KB content (its
// fingerprint is checked; the shard count may differ). Errors — truncated
// or corrupt streams, unsupported versions, stale snapshots for a different
// KB — leave the engine untouched and usable cold. Annotations after a
// warm start are byte-identical to a cold engine's (the golden-corpus
// suite pins this); only the cache hit/miss counters differ.
func (s *System) LoadEngine(r io.Reader) error { return s.Scorer().Restore(r) }

// Recognize runs named entity recognition only, over the serving
// generation's dictionary.
func (s *System) Recognize(text string) []MentionSpan {
	rec := s.recognizer
	rec.Lexicon = s.live.Load().store
	return rec.Recognize(text)
}

// NewProblem builds a disambiguation problem for pre-recognized mention
// surfaces against the serving KB generation. The problem shares that
// generation's scoring engine, so coherence values for KB-entity pairs are
// memoized across documents.
func (s *System) NewProblem(text string, surfaces []string) *Problem {
	lv := s.live.Load()
	if s.ExpandSurfaces {
		surfaces = disambig.ExpandSurfaces(lv.store, surfaces)
	}
	p := disambig.NewProblem(lv.store, text, surfaces, s.MaxCandidates)
	p.Scorer = lv.engine
	return p
}

// Disambiguate links pre-recognized mention surfaces in the text.
func (s *System) Disambiguate(text string, surfaces []string) *Output {
	return s.Method.Disambiguate(s.NewProblem(text, surfaces))
}

// Relatedness computes the semantic relatedness of two KB entities under
// the given measure, memoized by the system's shared engine (profiles and
// LSH filters are built once per KB, not per call).
func (s *System) Relatedness(kind RelatednessKind, a, b EntityID) float64 {
	return s.Scorer().Relatedness(kind, a, b)
}

// Confidence estimates per-mention disambiguation confidence with the CONF
// assessor of Chapter 5 (normalized weighted degree + entity perturbation).
func (s *System) Confidence(p *Problem, out *Output, iterations int, seed int64) []float64 {
	return emerge.CONF(s.Method, p, out, emerge.PerturbConfig{Iterations: iterations, Seed: seed})
}

// DiscoverEmerging links mentions while explicitly modeling out-of-KB
// entities: keyphrases for each surface are harvested from the corpus
// documents, placeholder models are built by model difference, and
// Algorithm 3 decides between KB entities and emerging ones. For the full
// workflow (enrichment, windowed chunks) use an EEPipeline directly.
func (s *System) DiscoverEmerging(text string, surfaces []string, corpus []string) *emerge.Discovery {
	lv := s.live.Load()
	pl := &emerge.Pipeline{
		KB:            lv.store,
		Method:        s.Method,
		MaxCandidates: s.MaxCandidates,
		Parallelism:   runtime.GOMAXPROCS(0),
		Scorer:        lv.engine,
	}
	chunk := make([]emerge.ChunkDoc, len(corpus))
	for i, c := range corpus {
		chunk[i] = emerge.ChunkDoc{Text: c, Surfaces: surfaces}
	}
	return pl.Run(text, surfaces, chunk, nil)
}
