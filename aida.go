package aida

import (
	"fmt"
	"io"
	"iter"
	"runtime"
	"strings"
	"sync"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
	"aida/internal/nec"
	"aida/internal/ner"
	"aida/internal/pool"
	"aida/internal/relatedness"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the supported public surface.
type (
	// KB is the knowledge base: entity repository, name dictionary, link
	// graph and keyphrase features.
	KB = kb.KB
	// KBBuilder assembles a KB.
	KBBuilder = kb.Builder
	// EntityID identifies a KB entity; NoEntity marks out-of-KB.
	EntityID = kb.EntityID
	// Entity is one canonical entity.
	Entity = kb.Entity
	// Keyphrase is a weighted salient phrase describing an entity.
	Keyphrase = kb.Keyphrase
	// Candidate is a disambiguation target with its features.
	Candidate = disambig.Candidate
	// Problem is a self-contained disambiguation instance.
	Problem = disambig.Problem
	// Result is the per-mention disambiguation outcome.
	Result = disambig.Result
	// Output is a full disambiguation result with work statistics.
	Output = disambig.Output
	// Method is a disambiguation algorithm.
	Method = disambig.Method
	// Config parameterizes the AIDA method.
	Config = disambig.Config
	// MentionSpan is a recognized mention with offsets.
	MentionSpan = ner.Mention
	// RelatednessKind selects an entity-relatedness measure.
	RelatednessKind = relatedness.Kind
	// Scorer is the long-lived, concurrency-safe scoring engine bound to a
	// KB: it interns entity profiles, memoizes pairwise relatedness across
	// documents for all measure kinds, and builds each LSH filter once.
	// Every System holds one; see (*System).Scorer.
	Scorer = relatedness.Scorer
	// ScorerStats is a snapshot of the engine's caches: interned-profile
	// count and approximate memory, memoized pair count, and per-kind
	// hit/miss counters. See (*Scorer).Stats.
	ScorerStats = relatedness.Stats
	// KindStats are one measure kind's pair-cache counters within a
	// ScorerStats snapshot.
	KindStats = relatedness.KindStats
	// Discoverer performs emerging-entity discovery (Algorithm 3).
	Discoverer = emerge.Discoverer
	// Harvester mines keyphrases around name occurrences.
	Harvester = emerge.Harvester
	// EEModelConfig tunes placeholder-model construction.
	EEModelConfig = emerge.ModelConfig
	// EEPipeline wires harvesting, enrichment, placeholder models and
	// discovery into the end-to-end news workflow of Chapter 5.
	EEPipeline = emerge.Pipeline
	// ChunkDoc is one document of an EEPipeline harvesting chunk.
	ChunkDoc = emerge.ChunkDoc
	// Enricher accumulates harvested keyphrases for existing entities.
	Enricher = emerge.Enricher
	// TypeClassifier predicts a mention context's coarse semantic type and
	// can pre-filter candidates (named entity classification, Sec. 2.4.4).
	TypeClassifier = nec.Classifier
)

// TrainTypeClassifier builds a TypeClassifier from the KB's type-keyword
// statistics.
func TrainTypeClassifier(k *KB) *TypeClassifier { return nec.Train(k) }

// NoEntity marks a mention whose entity is not in the knowledge base.
const NoEntity = kb.NoEntity

// Relatedness measure kinds (Chapter 4).
const (
	MW       = relatedness.KindMW
	KWCS     = relatedness.KindKWCS
	KPCS     = relatedness.KindKPCS
	KORE     = relatedness.KindKORE
	KORELSHG = relatedness.KindKORELSHG
	KORELSHF = relatedness.KindKORELSHF
)

// ParseRelatednessKind resolves a measure name as printed by
// RelatednessKind.String ("MW", "KWCS", "KPCS", "KORE", "KORE-LSH-G",
// "KORE-LSH-F"), case-insensitively.
func ParseRelatednessKind(name string) (RelatednessKind, error) {
	return relatedness.ParseKind(name)
}

// NewKBBuilder returns an empty knowledge-base builder.
func NewKBBuilder() *KBBuilder { return kb.NewBuilder() }

// LoadKB reads a KB snapshot written with (*KB).Save.
func LoadKB(r io.Reader) (*KB, error) { return kb.Load(r) }

// NewAIDAMethod returns the full AIDA method (robustness tests + MW
// coherence), the dissertation's best configuration.
func NewAIDAMethod() Method { return disambig.NewAIDA() }

// NewMethod builds an AIDA variant from an explicit configuration.
func NewMethod(name string, cfg Config) Method { return disambig.NewAIDAVariant(name, cfg) }

// Baselines returns the dissertation's full method suite (Table 3.2).
func Baselines() []Method { return disambig.Methods() }

// MethodByName resolves the method selectors shared by the command-line
// tools and the server, case-insensitively: "aida" (or empty, the
// default), "prior", "sim", "cuc", "kul-ci", "tagme", "iw". Unknown names
// are an error, never a silent fallback.
func MethodByName(name string) (Method, error) {
	switch strings.ToLower(name) {
	case "", "aida":
		return NewAIDAMethod(), nil
	case "tagme":
		return NewTagMe(), nil
	case "iw":
		return NewWikifier(), nil
	}
	wanted := map[string]string{
		"prior": "prior", "sim": "sim-k", "cuc": "Cuc", "kul-ci": "Kul CI",
	}[strings.ToLower(name)]
	if wanted != "" {
		for _, m := range Baselines() {
			if m.Name() == wanted {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("unknown method %q (want aida, prior, sim, cuc, kul-ci, tagme, iw)", name)
}

// NewTagMe returns the TagMe-style light-weight linker baseline.
func NewTagMe() Method { return disambig.TagMe{} }

// NewWikifier returns the Illinois-Wikifier-style linker baseline.
func NewWikifier() Method { return disambig.Wikifier{} }

// Annotation is one end-to-end annotation: a recognized mention linked to
// an entity (or NoEntity).
type Annotation struct {
	Mention MentionSpan
	Entity  EntityID
	Label   string
	Score   float64
}

// System bundles the full pipeline: recognition, candidate generation and
// disambiguation against one knowledge base.
type System struct {
	KB     *KB
	Method Method
	// MaxCandidates caps candidates per mention (0 = no cap).
	MaxCandidates int
	// ExpandSurfaces enables within-document surface expansion.
	ExpandSurfaces bool

	recognizer ner.Recognizer
	engine     *relatedness.Scorer
}

// Option configures a System.
type Option func(*System)

// WithMethod selects the disambiguation method (default: full AIDA).
func WithMethod(m Method) Option { return func(s *System) { s.Method = m } }

// WithMaxCandidates caps the candidates materialized per mention.
func WithMaxCandidates(n int) Option { return func(s *System) { s.MaxCandidates = n } }

// WithSurfaceExpansion enables the within-document coreference heuristic:
// single-word mentions are expanded to a longer mention of the same
// document containing them ("Carter" → "Rubin Carter").
func WithSurfaceExpansion() Option { return func(s *System) { s.ExpandSurfaces = true } }

// New creates a System over the knowledge base.
func New(k *KB, opts ...Option) *System {
	s := &System{KB: k, Method: disambig.NewAIDA(), engine: relatedness.NewScorer(k)}
	s.recognizer.Lexicon = k
	for _, o := range opts {
		o(s)
	}
	return s
}

// Scorer returns the system's shared scoring engine. It accumulates
// interned profiles and memoized pair scores across every document the
// system annotates; all its methods are safe for concurrent use.
func (s *System) Scorer() *Scorer { return s.engine }

// Recognize runs named entity recognition only.
func (s *System) Recognize(text string) []MentionSpan {
	return s.recognizer.Recognize(text)
}

// NewProblem builds a disambiguation problem for pre-recognized mention
// surfaces. The problem shares the system's scoring engine, so coherence
// values for KB-entity pairs are memoized across documents.
func (s *System) NewProblem(text string, surfaces []string) *Problem {
	if s.ExpandSurfaces {
		surfaces = disambig.ExpandSurfaces(s.KB, surfaces)
	}
	p := disambig.NewProblem(s.KB, text, surfaces, s.MaxCandidates)
	p.Scorer = s.engine
	return p
}

// Disambiguate links pre-recognized mention surfaces in the text.
func (s *System) Disambiguate(text string, surfaces []string) *Output {
	return s.Method.Disambiguate(s.NewProblem(text, surfaces))
}

// Annotate runs the full pipeline: recognition plus disambiguation.
func (s *System) Annotate(text string) []Annotation {
	return s.annotate(text, 0)
}

// AnnotateBounded is Annotate with an explicit concurrency budget: at
// most parallelism goroutines score the document's coherence edges
// (parallelism ≤ 0 keeps the method's own default, GOMAXPROCS). The bound
// changes scheduling only, never results; servers use it to honor a
// per-request parallelism cap on single-document requests.
func (s *System) AnnotateBounded(text string, parallelism int) []Annotation {
	if parallelism < 0 {
		parallelism = 0
	}
	return s.annotate(text, parallelism)
}

// annotate is Annotate with an explicit coherence-pool override:
// coherenceWorkers = 1 pins per-document scoring to one goroutine (used
// under document-level fan-out, where parallelism comes from the batch
// pool), 0 keeps the method's own default. The override never changes
// results, only scheduling.
func (s *System) annotate(text string, coherenceWorkers int) []Annotation {
	mentions := s.recognizer.Recognize(text)
	surfaces := make([]string, len(mentions))
	for i, m := range mentions {
		surfaces[i] = m.Text
	}
	p := s.NewProblem(text, surfaces)
	p.CoherenceWorkers = coherenceWorkers
	out := s.Method.Disambiguate(p)
	anns := make([]Annotation, len(mentions))
	for i, m := range mentions {
		r := out.Results[i]
		anns[i] = Annotation{Mention: m, Entity: r.Entity, Label: r.Label, Score: r.Score}
	}
	return anns
}

// AnnotateBatch annotates documents concurrently with a bounded worker
// pool (parallelism ≤ 0 means GOMAXPROCS) and returns the annotations in
// input order. The output is byte-identical to calling Annotate on each
// document sequentially: documents are independent, and the shared engine
// only memoizes values that are pure functions of the KB.
func (s *System) AnnotateBatch(docs []string, parallelism int) [][]Annotation {
	out := make([][]Annotation, len(docs))
	workers := batchWorkers(parallelism, len(docs))
	if workers <= 1 {
		// One document at a time. An explicit parallelism is the total
		// concurrency budget, so it bounds each document's coherence pool
		// (parallelism 1 means one goroutine in total, not one document
		// at a time each fanning out to GOMAXPROCS); parallelism ≤ 0
		// keeps the method default.
		inner := parallelism
		if inner < 0 {
			inner = 0
		}
		for i, d := range docs {
			out[i] = s.annotate(d, inner)
		}
		return out
	}
	// Parallelism comes from the document pool; pin each document's
	// coherence scoring to one goroutine so a P-worker batch schedules P
	// goroutines, not P².
	pool.ForEach(len(docs), workers, func(i int) {
		out[i] = s.annotate(docs[i], 1)
	})
	return out
}

// AnnotateAll streams annotations for an arbitrary document sequence:
// documents are fanned out to a bounded worker pool (parallelism ≤ 0 means
// GOMAXPROCS) while results are yielded strictly in input order, each as
// soon as it and all its predecessors are done. Breaking out of the range
// loop stops the workers. Memory stays bounded by the worker count rather
// than the corpus size, so it suits indefinite feeds (news streams, queue
// consumers); for in-memory slices AnnotateBatch is simpler.
func (s *System) AnnotateAll(docs iter.Seq[string], parallelism int) iter.Seq2[int, []Annotation] {
	return func(yield func(int, []Annotation) bool) {
		workers := batchWorkers(parallelism, -1)
		if workers <= 1 {
			// workers == 1 means the caller asked for parallelism 1 or
			// GOMAXPROCS is 1; either way the whole sequence runs on one
			// goroutine, so the per-document coherence pool is pinned too.
			i := 0
			for d := range docs {
				if !yield(i, s.annotate(d, 1)) {
					return
				}
				i++
			}
			return
		}
		type job struct {
			i    int
			text string
		}
		type res struct {
			i    int
			anns []Annotation
		}
		stop := make(chan struct{})
		defer close(stop)
		jobs := make(chan job, workers)
		results := make(chan res, workers)
		go func() { // producer
			defer close(jobs)
			i := 0
			for d := range docs {
				select {
				case jobs <- job{i: i, text: d}:
					i++
				case <-stop:
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					select {
					case results <- res{i: j.i, anns: s.annotate(j.text, 1)}:
					case <-stop:
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()
		// Reorder: emit document i only after 0..i-1 have been emitted.
		// annotate always returns a non-nil slice, so presence in pending
		// is enough to mark a document done.
		pending := make(map[int][]Annotation, workers)
		next := 0
		for r := range results {
			pending[r.i] = r.anns
			for {
				anns, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !yield(next, anns) {
					return
				}
				next++
			}
		}
	}
}

// batchWorkers resolves the worker count for a document fan-out; n < 0
// means the document count is unknown (streaming).
func batchWorkers(parallelism, n int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && w > n {
		w = n
	}
	return w
}

// Relatedness computes the semantic relatedness of two KB entities under
// the given measure, memoized by the system's shared engine (profiles and
// LSH filters are built once per KB, not per call).
func (s *System) Relatedness(kind RelatednessKind, a, b EntityID) float64 {
	return s.engine.Relatedness(kind, a, b)
}

// Confidence estimates per-mention disambiguation confidence with the CONF
// assessor of Chapter 5 (normalized weighted degree + entity perturbation).
func (s *System) Confidence(p *Problem, out *Output, iterations int, seed int64) []float64 {
	return emerge.CONF(s.Method, p, out, emerge.PerturbConfig{Iterations: iterations, Seed: seed})
}

// DiscoverEmerging links mentions while explicitly modeling out-of-KB
// entities: keyphrases for each surface are harvested from the corpus
// documents, placeholder models are built by model difference, and
// Algorithm 3 decides between KB entities and emerging ones. For the full
// workflow (enrichment, windowed chunks) use an EEPipeline directly.
func (s *System) DiscoverEmerging(text string, surfaces []string, corpus []string) *emerge.Discovery {
	pl := &emerge.Pipeline{
		KB:            s.KB,
		Method:        s.Method,
		MaxCandidates: s.MaxCandidates,
		Parallelism:   runtime.GOMAXPROCS(0),
		Scorer:        s.engine,
	}
	chunk := make([]emerge.ChunkDoc, len(corpus))
	for i, c := range corpus {
		chunk[i] = emerge.ChunkDoc{Text: c, Surfaces: surfaces}
	}
	return pl.Run(text, surfaces, chunk, nil)
}
