package aida

import (
	"io"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
	"aida/internal/nec"
	"aida/internal/ner"
	"aida/internal/relatedness"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the supported public surface.
type (
	// KB is the knowledge base: entity repository, name dictionary, link
	// graph and keyphrase features.
	KB = kb.KB
	// KBBuilder assembles a KB.
	KBBuilder = kb.Builder
	// EntityID identifies a KB entity; NoEntity marks out-of-KB.
	EntityID = kb.EntityID
	// Entity is one canonical entity.
	Entity = kb.Entity
	// Keyphrase is a weighted salient phrase describing an entity.
	Keyphrase = kb.Keyphrase
	// Candidate is a disambiguation target with its features.
	Candidate = disambig.Candidate
	// Problem is a self-contained disambiguation instance.
	Problem = disambig.Problem
	// Result is the per-mention disambiguation outcome.
	Result = disambig.Result
	// Output is a full disambiguation result with work statistics.
	Output = disambig.Output
	// Method is a disambiguation algorithm.
	Method = disambig.Method
	// Config parameterizes the AIDA method.
	Config = disambig.Config
	// MentionSpan is a recognized mention with offsets.
	MentionSpan = ner.Mention
	// RelatednessKind selects an entity-relatedness measure.
	RelatednessKind = relatedness.Kind
	// Discoverer performs emerging-entity discovery (Algorithm 3).
	Discoverer = emerge.Discoverer
	// Harvester mines keyphrases around name occurrences.
	Harvester = emerge.Harvester
	// EEModelConfig tunes placeholder-model construction.
	EEModelConfig = emerge.ModelConfig
	// EEPipeline wires harvesting, enrichment, placeholder models and
	// discovery into the end-to-end news workflow of Chapter 5.
	EEPipeline = emerge.Pipeline
	// ChunkDoc is one document of an EEPipeline harvesting chunk.
	ChunkDoc = emerge.ChunkDoc
	// Enricher accumulates harvested keyphrases for existing entities.
	Enricher = emerge.Enricher
	// TypeClassifier predicts a mention context's coarse semantic type and
	// can pre-filter candidates (named entity classification, Sec. 2.4.4).
	TypeClassifier = nec.Classifier
)

// TrainTypeClassifier builds a TypeClassifier from the KB's type-keyword
// statistics.
func TrainTypeClassifier(k *KB) *TypeClassifier { return nec.Train(k) }

// NoEntity marks a mention whose entity is not in the knowledge base.
const NoEntity = kb.NoEntity

// Relatedness measure kinds (Chapter 4).
const (
	MW       = relatedness.KindMW
	KWCS     = relatedness.KindKWCS
	KPCS     = relatedness.KindKPCS
	KORE     = relatedness.KindKORE
	KORELSHG = relatedness.KindKORELSHG
	KORELSHF = relatedness.KindKORELSHF
)

// NewKBBuilder returns an empty knowledge-base builder.
func NewKBBuilder() *KBBuilder { return kb.NewBuilder() }

// LoadKB reads a KB snapshot written with (*KB).Save.
func LoadKB(r io.Reader) (*KB, error) { return kb.Load(r) }

// NewAIDAMethod returns the full AIDA method (robustness tests + MW
// coherence), the dissertation's best configuration.
func NewAIDAMethod() Method { return disambig.NewAIDA() }

// NewMethod builds an AIDA variant from an explicit configuration.
func NewMethod(name string, cfg Config) Method { return disambig.NewAIDAVariant(name, cfg) }

// Baselines returns the dissertation's full method suite (Table 3.2).
func Baselines() []Method { return disambig.Methods() }

// NewTagMe returns the TagMe-style light-weight linker baseline.
func NewTagMe() Method { return disambig.TagMe{} }

// NewWikifier returns the Illinois-Wikifier-style linker baseline.
func NewWikifier() Method { return disambig.Wikifier{} }

// Annotation is one end-to-end annotation: a recognized mention linked to
// an entity (or NoEntity).
type Annotation struct {
	Mention MentionSpan
	Entity  EntityID
	Label   string
	Score   float64
}

// System bundles the full pipeline: recognition, candidate generation and
// disambiguation against one knowledge base.
type System struct {
	KB     *KB
	Method Method
	// MaxCandidates caps candidates per mention (0 = no cap).
	MaxCandidates int
	// ExpandSurfaces enables within-document surface expansion.
	ExpandSurfaces bool

	recognizer ner.Recognizer
}

// Option configures a System.
type Option func(*System)

// WithMethod selects the disambiguation method (default: full AIDA).
func WithMethod(m Method) Option { return func(s *System) { s.Method = m } }

// WithMaxCandidates caps the candidates materialized per mention.
func WithMaxCandidates(n int) Option { return func(s *System) { s.MaxCandidates = n } }

// WithSurfaceExpansion enables the within-document coreference heuristic:
// single-word mentions are expanded to a longer mention of the same
// document containing them ("Carter" → "Rubin Carter").
func WithSurfaceExpansion() Option { return func(s *System) { s.ExpandSurfaces = true } }

// New creates a System over the knowledge base.
func New(k *KB, opts ...Option) *System {
	s := &System{KB: k, Method: disambig.NewAIDA()}
	s.recognizer.Lexicon = k
	for _, o := range opts {
		o(s)
	}
	return s
}

// Recognize runs named entity recognition only.
func (s *System) Recognize(text string) []MentionSpan {
	return s.recognizer.Recognize(text)
}

// NewProblem builds a disambiguation problem for pre-recognized mention
// surfaces.
func (s *System) NewProblem(text string, surfaces []string) *Problem {
	if s.ExpandSurfaces {
		surfaces = disambig.ExpandSurfaces(s.KB, surfaces)
	}
	return disambig.NewProblem(s.KB, text, surfaces, s.MaxCandidates)
}

// Disambiguate links pre-recognized mention surfaces in the text.
func (s *System) Disambiguate(text string, surfaces []string) *Output {
	return s.Method.Disambiguate(s.NewProblem(text, surfaces))
}

// Annotate runs the full pipeline: recognition plus disambiguation.
func (s *System) Annotate(text string) []Annotation {
	mentions := s.recognizer.Recognize(text)
	surfaces := make([]string, len(mentions))
	for i, m := range mentions {
		surfaces[i] = m.Text
	}
	out := s.Disambiguate(text, surfaces)
	anns := make([]Annotation, len(mentions))
	for i, m := range mentions {
		r := out.Results[i]
		anns[i] = Annotation{Mention: m, Entity: r.Entity, Label: r.Label, Score: r.Score}
	}
	return anns
}

// Relatedness computes the semantic relatedness of two KB entities under
// the given measure.
func (s *System) Relatedness(kind RelatednessKind, a, b EntityID) float64 {
	return relatedness.NewMeasure(kind, s.KB).Relatedness(a, b)
}

// Confidence estimates per-mention disambiguation confidence with the CONF
// assessor of Chapter 5 (normalized weighted degree + entity perturbation).
func (s *System) Confidence(p *Problem, out *Output, iterations int, seed int64) []float64 {
	return emerge.CONF(s.Method, p, out, emerge.PerturbConfig{Iterations: iterations, Seed: seed})
}

// DiscoverEmerging links mentions while explicitly modeling out-of-KB
// entities: keyphrases for each surface are harvested from the corpus
// documents, placeholder models are built by model difference, and
// Algorithm 3 decides between KB entities and emerging ones. For the full
// workflow (enrichment, windowed chunks) use an EEPipeline directly.
func (s *System) DiscoverEmerging(text string, surfaces []string, corpus []string) *emerge.Discovery {
	pl := &emerge.Pipeline{
		KB:            s.KB,
		Method:        s.Method,
		MaxCandidates: s.MaxCandidates,
	}
	chunk := make([]emerge.ChunkDoc, len(corpus))
	for i, c := range corpus {
		chunk[i] = emerge.ChunkDoc{Text: c, Surfaces: surfaces}
	}
	return pl.Run(text, surfaces, chunk, nil)
}
