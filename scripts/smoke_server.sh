#!/usr/bin/env sh
# End-to-end smoke of the serving surface added by the multi-tenant PR:
# boots a real aidaserver (synthetic KB, tenanted config), then drives it
# with curl — the open endpoints, the /demo page, the annotated-HTML
# rendering, API-key auth (401 without a key), the token-bucket quota
# (429 + Retry-After past the burst), X-Request-ID echo, and the
# per-tenant Prometheus families. Run from the repository root:
#
#   ./scripts/smoke_server.sh [path-to-aidaserver-binary]
#
# Without an argument the server binary is built into a temp dir first.
set -eu

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

bin="${1:-}"
if [ -z "$bin" ]; then
    bin="$workdir/aidaserver"
    go build -o "$bin" ./cmd/aidaserver
fi

cat >"$workdir/tenants.json" <<'EOF'
{"tenants": [
  {"name": "smoke", "key": "smoke-key", "rate_per_sec": 100, "burst": 100},
  {"name": "tiny", "key": "tiny-key", "rate_per_sec": 0.001, "burst": 1}
]}
EOF

"$bin" -gen 300 -seed 17 -addr 127.0.0.1:0 -tenants "$workdir/tenants.json" \
    >"$workdir/server.log" 2>&1 &
pid=$!

# The server logs its resolved address ("serving addr=127.0.0.1:NNNNN").
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*msg=serving addr=\([0-9.:]*\).*/\1/p' "$workdir/server.log" | head -1)
    if [ -n "$addr" ] && curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    addr=""
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: server never became healthy" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
base="http://$addr"
echo "server up at $base"

fail() {
    echo "FAIL: $1" >&2
    cat "$workdir/server.log" >&2
    exit 1
}

# The demo page is an open endpoint and self-contained HTML.
curl -fsS "$base/demo" | grep -q '<!doctype html>' || fail "/demo is not the demo page"
curl -fsS "$base/demo" | grep -q '/v1/annotate' || fail "/demo does not drive the API"

# Annotation requires a key: 401 without, 200 with.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/annotate" \
    -H 'Content-Type: application/json' -d '{"text": "hello"}')
[ "$code" = "401" ] || fail "keyless annotate returned $code, want 401"

# The annotated-HTML rendering, authenticated.
html=$(curl -fsS -X POST "$base/v1/annotate?format=html" \
    -H 'X-API-Key: smoke-key' -H 'Content-Type: application/json' \
    -d '{"text": "A short smoke document."}')
echo "$html" | grep -q 'class="aida-doc"' || fail "?format=html did not return the annotated fragment"

# Every response carries an X-Request-ID; a supplied one is echoed.
hdr=$(curl -fsS -D - -o /dev/null -X POST "$base/v1/annotate" \
    -H 'X-API-Key: smoke-key' -H 'Content-Type: application/json' \
    -H 'X-Request-ID: smoke-trace-1' -d '{"text": "hi"}')
echo "$hdr" | grep -qi '^x-request-id: smoke-trace-1' || fail "X-Request-ID not echoed"

# The tiny tenant's bucket holds one token: first request in, second 429
# with a Retry-After.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/annotate" \
    -H 'X-API-Key: tiny-key' -H 'Content-Type: application/json' -d '{"text": "one"}')
[ "$code" = "200" ] || fail "tiny tenant's first request returned $code, want 200"
hdr=$(curl -s -D - -o /dev/null -X POST "$base/v1/annotate" \
    -H 'X-API-Key: tiny-key' -H 'Content-Type: application/json' -d '{"text": "two"}')
echo "$hdr" | grep -q '429' || fail "tiny tenant's second request was not throttled"
echo "$hdr" | grep -qi '^retry-after: [0-9]' || fail "429 lacked a Retry-After header"

# Per-tenant counters in the Prometheus exposition (open endpoint).
prom=$(curl -fsS "$base/v1/stats?format=prometheus")
echo "$prom" | grep -q 'aida_server_tenant_requests_total{tenant="smoke"}' ||
    fail "prometheus lacks the smoke tenant's request counter"
echo "$prom" | grep -q 'aida_server_tenant_throttled_total{tenant="tiny"} 1' ||
    fail "prometheus lacks the tiny tenant's throttle count"

echo "OK: demo, HTML output, auth, quotas, tracing and tenant metrics all smoke-tested"
