// Command bench_json reduces `go test -bench` output into the committed
// benchmark-trajectory artifact: one JSON record per benchmark with its
// mean ns/op, B/op and allocs/op across repeats (-count=N runs of the same
// benchmark are averaged). CI runs the three benchmark families with
// -benchmem -count=5, pipes the text through this reducer and uploads the
// result, so the perf trajectory of the engine is recorded per PR:
//
//	go test -run '^$' -bench 'BenchmarkAnnotateBatch|BenchmarkWarmStart' \
//	    -benchmem -benchtime 1x -count=5 . > bench.txt
//	go test -run '^$' -bench BenchmarkServerAnnotate \
//	    -benchmem -benchtime 1x -count=5 ./internal/server >> bench.txt
//	go run ./scripts < bench.txt > BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	iters  int64
	nsOp   float64
	bOp    float64
	allocs float64
}

// record is the reduced, committed form of one benchmark.
type record struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// artifact is the BENCH_<n>.json shape.
type artifact struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out, err := reduce(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "bench_json:", err)
		os.Exit(1)
	}
}

func reduce(r *os.File) (artifact, error) {
	var art artifact
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			art.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		name, s, ok := parseLine(line)
		if !ok {
			continue
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return art, err
	}
	if len(samples) == 0 {
		return art, fmt.Errorf("no benchmark result lines on stdin")
	}
	for name, ss := range samples {
		rec := record{Name: name, Samples: len(ss)}
		for _, s := range ss {
			rec.Iterations += s.iters
			rec.NsPerOp += s.nsOp
			rec.BPerOp += s.bOp
			rec.AllocsPerOp += s.allocs
		}
		n := float64(len(ss))
		rec.NsPerOp /= n
		rec.BPerOp /= n
		rec.AllocsPerOp /= n
		art.Benchmarks = append(art.Benchmarks, rec)
	}
	sort.Slice(art.Benchmarks, func(i, j int) bool {
		return art.Benchmarks[i].Name < art.Benchmarks[j].Name
	})
	return art, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   5   123456 ns/op   789 B/op   12 allocs/op   3.4 docs/s
//
// tolerating extra custom metrics. The -P GOMAXPROCS suffix is stripped so
// records stay comparable across machines.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s := sample{iters: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsOp = v
			seen = true
		case "B/op":
			s.bOp = v
		case "allocs/op":
			s.allocs = v
		}
	}
	return name, s, seen
}
