// Command bench_json reduces `go test -bench` output into the committed
// benchmark-trajectory artifact: one JSON record per benchmark with its
// mean ns/op, B/op and allocs/op across repeats (-count=N runs of the same
// benchmark are averaged). CI runs the benchmark families with
// -benchmem -count=5 and GOMAXPROCS pinned, pipes the text through this
// reducer and uploads the result, so the perf trajectory of the engine is
// recorded per PR:
//
//	go test -run '^$' -bench 'BenchmarkAnnotate|BenchmarkWarmStart' \
//	    -benchmem -benchtime 1x -count=5 . > bench.txt
//	go test -run '^$' -bench BenchmarkServerAnnotate \
//	    -benchmem -benchtime 1x -count=5 ./internal/server >> bench.txt
//	go run ./scripts -prev BENCH_5.json < bench.txt > BENCH_6.json
//
// With -prev the fresh reduction is compared against a previously
// committed artifact and a per-benchmark markdown delta table is appended
// to the file named by -summary (for $GITHUB_STEP_SUMMARY; stderr when
// unset), flagging any benchmark whose ns/op or allocs/op regressed by
// more than 10%. The table is advisory — it never fails the run; timing
// on shared CI runners is too noisy for a hard gate, the committed JSON
// trajectory is the durable record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// regressionThreshold is the relative ns/op or allocs/op increase past
// which the delta table flags a benchmark as a regression.
const regressionThreshold = 0.10

// sample is one parsed benchmark result line.
type sample struct {
	iters  int64
	nsOp   float64
	bOp    float64
	allocs float64
}

// record is the reduced, committed form of one benchmark.
type record struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// artifact is the BENCH_<n>.json shape. NumCPU and GOMAXPROCS record the
// parallel capacity behind the numbers: scaling benchmarks are meaningless
// without knowing how many CPUs the workers actually had.
type artifact struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	prevPath := flag.String("prev", "", "previously committed BENCH_*.json to diff against")
	summaryPath := flag.String("summary", "", "append the -prev delta table to this file (e.g. $GITHUB_STEP_SUMMARY); stderr when unset")
	flag.Parse()

	out, err := reduce(os.Stdin)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *prevPath == "" {
		return
	}
	prev, err := readArtifact(*prevPath)
	if err != nil {
		fatal(err)
	}
	table := deltaTable(*prevPath, prev, out)
	var w io.Writer = os.Stderr
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := io.WriteString(w, table); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench_json:", err)
	os.Exit(1)
}

func readArtifact(path string) (artifact, error) {
	var art artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return art, err
	}
	if err := json.Unmarshal(data, &art); err != nil {
		return art, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

func reduce(r io.Reader) (artifact, error) {
	art := artifact{NumCPU: runtime.NumCPU()}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			art.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		name, procs, s, ok := parseLine(line)
		if !ok {
			continue
		}
		if procs > 0 {
			art.GOMAXPROCS = procs
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return art, err
	}
	if len(samples) == 0 {
		return art, fmt.Errorf("no benchmark result lines on stdin")
	}
	for name, ss := range samples {
		rec := record{Name: name, Samples: len(ss)}
		for _, s := range ss {
			rec.Iterations += s.iters
			rec.NsPerOp += s.nsOp
			rec.BPerOp += s.bOp
			rec.AllocsPerOp += s.allocs
		}
		n := float64(len(ss))
		rec.NsPerOp /= n
		rec.BPerOp /= n
		rec.AllocsPerOp /= n
		art.Benchmarks = append(art.Benchmarks, rec)
	}
	sort.Slice(art.Benchmarks, func(i, j int) bool {
		return art.Benchmarks[i].Name < art.Benchmarks[j].Name
	})
	return art, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   5   123456 ns/op   789 B/op   12 allocs/op   3.4 docs/s
//
// tolerating extra custom metrics. The -P GOMAXPROCS suffix is stripped so
// records stay comparable across machines, and returned separately for the
// artifact header.
func parseLine(line string) (string, int, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, sample{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, sample{}, false
	}
	s := sample{iters: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsOp = v
			seen = true
		case "B/op":
			s.bOp = v
		case "allocs/op":
			s.allocs = v
		}
	}
	return name, procs, s, seen
}

// deltaTable renders the fresh run against a previous artifact as a
// GitHub-flavored markdown table: one row per benchmark present in both,
// with the relative change in ns/op, B/op and allocs/op, and a ⚠️ marker
// on any row whose ns/op or allocs/op regressed past the threshold.
// Benchmarks that only exist on one side are listed below the table so
// renames and additions stay visible.
func deltaTable(prevName string, prev, cur artifact) string {
	prevBy := make(map[string]record, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		prevBy[r.Name] = r
	}
	curBy := make(map[string]record, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curBy[r.Name] = r
	}

	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark delta vs %s\n\n", prevName)
	fmt.Fprintf(&b, "| benchmark | ns/op | Δ | B/op | Δ | allocs/op | Δ | |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|---|\n")
	regressions := 0
	for _, r := range cur.Benchmarks {
		p, ok := prevBy[r.Name]
		if !ok {
			continue
		}
		nsD := relDelta(p.NsPerOp, r.NsPerOp)
		bD := relDelta(p.BPerOp, r.BPerOp)
		allocD := relDelta(p.AllocsPerOp, r.AllocsPerOp)
		mark := ""
		if nsD > regressionThreshold || allocD > regressionThreshold {
			mark = "⚠️"
			regressions++
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s |\n",
			r.Name,
			fmtVal(r.NsPerOp), fmtDelta(nsD),
			fmtVal(r.BPerOp), fmtDelta(bD),
			fmtVal(r.AllocsPerOp), fmtDelta(allocD),
			mark)
	}
	var added, removed []string
	for _, r := range cur.Benchmarks {
		if _, ok := prevBy[r.Name]; !ok {
			added = append(added, r.Name)
		}
	}
	for _, r := range prev.Benchmarks {
		if _, ok := curBy[r.Name]; !ok {
			removed = append(removed, r.Name)
		}
	}
	b.WriteString("\n")
	if regressions > 0 {
		fmt.Fprintf(&b, "⚠️ **%d benchmark(s) regressed by more than %.0f%%** in ns/op or allocs/op.\n\n",
			regressions, regressionThreshold*100)
	}
	if len(added) > 0 {
		fmt.Fprintf(&b, "New benchmarks (no baseline): %s\n\n", strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Fprintf(&b, "Benchmarks no longer present: %s\n\n", strings.Join(removed, ", "))
	}
	return b.String()
}

// relDelta is the relative change from old to new; 0 when there is no
// usable baseline (old == 0).
func relDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

func fmtVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func fmtDelta(d float64) string {
	return fmt.Sprintf("%+.1f%%", d*100)
}
