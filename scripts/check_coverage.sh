#!/usr/bin/env sh
# Coverage gate for the KB substrate (local, sharded and remote stores),
# the disambiguation core and the scoring engine: the packages the
# sharding router, the remote fleet client/host, the scoring layers and
# the engine persistence/eviction machinery live in — plus the live-KB
# graduation loop and the HTTP serving layer (content negotiation,
# multi-tenant admission, tracing, HTML rendering) — must stay above the
# checked-in threshold. Run from the repository root:
#
#   ./scripts/check_coverage.sh
#
# The threshold is deliberately part of the repository, not the CI config,
# so lowering it shows up in review.
#
# Each gated package is measured with -coverpkg so statements exercised by
# companion test packages count: the remote-store client, the shard host
# and the shard-map parser in ./internal/kb are driven both by in-package
# tests and by the cross-process fleet conformance suite in
# ./internal/kbtest, and both contribute to the gate.
set -eu

THRESHOLD=70

# gated package : test packages whose runs contribute coverage
covered() {
    case "$1" in
    ./internal/kb) echo "./internal/kb ./internal/kbtest" ;;
    # The eval harness is driven mostly from the outside: the workload
    # gates in ./internal/eval's own test package plus the corpus
    # generators and golden conformance suite in ./internal/kbtest.
    ./internal/eval) echo "./internal/eval ./internal/kbtest" ;;
    *) echo "$1" ;;
    esac
}

PACKAGES="./internal/kb ./internal/kb/live ./internal/disambig ./internal/relatedness ./internal/server ./internal/eval"

status=0
failed_profiles=""
for pkg in $PACKAGES; do
    profile=$(mktemp)
    # shellcheck disable=SC2046 # test-package list is intentionally split
    go test -coverprofile="$profile" -coverpkg="$pkg" $(covered "$pkg") >/dev/null
    pct=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    delta=$(awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { printf "%+.1f", p - t }')
    echo "coverage $pkg: $pct% (threshold ${THRESHOLD}%, delta ${delta})"
    if awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { exit (p+0 >= t) ? 0 : 1 }'; then
        rm -f "$profile"
    else
        echo "FAIL: $pkg coverage $pct% is below ${THRESHOLD}% (delta ${delta})" >&2
        failed_profiles="$failed_profiles $pkg=$profile"
        status=1
    fi
done

# On failure, show where the gap is: the least-covered functions of every
# failing package, so the fix is a grep away instead of a local rerun.
for entry in $failed_profiles; do
    pkg=${entry%%=*}
    profile=${entry#*=}
    echo "least-covered functions in $pkg:" >&2
    go tool cover -func="$profile" | grep -v '^total:' |
        sort -k3 -n | head -15 >&2
    rm -f "$profile"
done
exit $status
