#!/usr/bin/env sh
# Coverage gate for the KB substrate, the disambiguation core and the
# scoring engine: the packages the sharding router, the scoring layers and
# the engine persistence/eviction machinery live in must stay above the
# checked-in threshold. Run from the repository root:
#
#   ./scripts/check_coverage.sh
#
# The threshold is deliberately part of the repository, not the CI config,
# so lowering it shows up in review.
set -eu

THRESHOLD=70
PACKAGES="./internal/kb ./internal/disambig ./internal/relatedness"

status=0
for pkg in $PACKAGES; do
    profile=$(mktemp)
    go test -coverprofile="$profile" "$pkg" >/dev/null
    pct=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f "$profile"
    echo "coverage $pkg: $pct% (threshold ${THRESHOLD}%)"
    if awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { exit (p+0 >= t) ? 0 : 1 }'; then
        :
    else
        echo "FAIL: $pkg coverage $pct% is below ${THRESHOLD}%" >&2
        status=1
    fi
done
exit $status
